// Command ftdecomp runs one protected matrix decomposition on the
// simulated heterogeneous system and prints its overhead report and
// verification counters (the per-run data behind Tables VI and VII).
//
// Usage:
//
//	ftdecomp -decomp lu -n 1024 -nb 64 -gpus 2 -mode full -scheme new
//	ftdecomp -decomp cholesky -counters   # Table VI comparison
package main

import (
	"flag"
	"fmt"
	"os"

	"ftla/internal/checksum"
	"ftla/internal/core"
	"ftla/internal/hetsim"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
	"ftla/internal/overhead"
	"ftla/internal/report"
)

func main() {
	var (
		decomp   = flag.String("decomp", "lu", "decomposition: cholesky | lu | qr")
		n        = flag.Int("n", 1024, "matrix order (multiple of nb)")
		nb       = flag.Int("nb", 64, "block size")
		gpus     = flag.Int("gpus", 2, "simulated GPUs")
		mode     = flag.String("mode", "full", "checksum mode: none | single | full")
		scheme   = flag.String("scheme", "new", "checking scheme: none | prior | post | new")
		kern     = flag.String("kernel", "opt", "checksum kernel: gemm | opt")
		counters = flag.Bool("counters", false, "run all three schemes and compare Table VI counters")
		ovh      = flag.Bool("overhead", false, "compare the §IX analytic overhead model against measured flops (Table VII)")
	)
	flag.Parse()

	if *counters {
		runCounters(*decomp, *n, *nb, *gpus)
		return
	}
	if *ovh {
		runOverhead(*decomp, *n, *nb, *gpus)
		return
	}
	opts := core.Options{NB: *nb, Mode: parseMode(*mode), Scheme: parseScheme(*scheme), Kernel: parseKernel(*kern)}
	res, resid, sys, err := runSys(*decomp, *n, *gpus, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	t := report.NewTable(fmt.Sprintf("%s n=%d nb=%d gpus=%d mode=%v scheme=%v kernel=%v",
		*decomp, *n, *nb, *gpus, res.Mode, res.Scheme, res.Kernel), "metric", "value")
	t.AddRow("wall time", res.Wall.String())
	t.AddRow("encode time", res.EncodeT.String())
	t.AddRow("verify time", res.VerifyT.String())
	t.AddRow("recover time", res.RecoverT.String())
	t.AddRow("blocks verified", res.Counter.TotalChecked())
	t.AddRow("pcie bytes", res.PCIeBytes)
	t.AddRow("sim makespan (s)", res.SimMakespan)
	t.AddRow("residual", resid)
	t.AddRow("outcome", res.OutcomeOf(resid < 1e-9).String())
	t.Render(os.Stdout)

	ut := report.NewTable("simulated device utilization", "device", "sim seconds", "share %")
	for _, st := range sys.Utilization() {
		ut.AddRow(st.Name, st.SimSecs, 100*st.Share)
	}
	fmt.Println()
	ut.Render(os.Stdout)
}

func runOverhead(decomp string, n, nb, gpus int) {
	var d overhead.Decomp
	switch decomp {
	case "cholesky":
		d = overhead.Cholesky
	case "qr":
		d = overhead.QR
	default:
		d = overhead.LU
	}
	base, _, err := run(decomp, n, gpus, core.Options{NB: nb, Mode: core.NoChecksum, Scheme: core.NoCheck})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	prot, _, err := run(decomp, n, gpus, core.Options{NB: nb, Mode: core.Full, Scheme: core.NewScheme, Kernel: checksum.OptKernel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	b := overhead.Analytic(d, n, nb, 0)
	measured := 100 * (float64(prot.Flops) - float64(base.Flops)) / float64(base.Flops)
	t := report.NewTable(
		fmt.Sprintf("Table VII — relative overhead, analytic vs measured (%s, n=%d, nb=%d)", d, n, nb),
		"component", "analytic %")
	t.AddRow("encode (∝1/n)", 100*b.Encode)
	t.AddRow("update (∝1/NB)", 100*b.Update)
	t.AddRow("verify (∝1/n)", 100*b.Verify)
	t.AddRow("total analytic", 100*b.Total())
	t.AddRow("total measured (flops)", measured)
	t.AddRow("memory space (4/NB)", 100*overhead.MemorySpace(nb))
	t.Render(os.Stdout)
}

func runCounters(decomp string, n, nb, gpus int) {
	t := report.NewTable(
		fmt.Sprintf("Table VI — blocks verified per run (%s, n=%d, nb=%d, b=%d)", decomp, n, nb, n/nb),
		"scheme", "PD-", "PD+", "PU-", "PU+", "TMU-", "TMU+", "swap", "total")
	for _, cfg := range []struct {
		name   string
		mode   core.Mode
		scheme core.Scheme
	}{
		{"prior-op", core.SingleSide, core.PriorOp},
		{"post-op", core.Full, core.PostOp},
		{"new (ours)", core.Full, core.NewScheme},
	} {
		opts := core.Options{NB: nb, Mode: cfg.mode, Scheme: cfg.scheme, Kernel: checksum.OptKernel}
		res, _, err := run(decomp, n, gpus, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		c := res.Counter
		t.AddRow(cfg.name, c.PDBefore, c.PDAfter, c.PUBefore, c.PUAfter, c.TMUBefore, c.TMUAfter, c.SwapChecks, c.TotalChecked())
	}
	t.Render(os.Stdout)
}

func run(decomp string, n, gpus int, opts core.Options) (*core.Result, float64, error) {
	res, resid, _, err := runSys(decomp, n, gpus, opts)
	return res, resid, err
}

func runSys(decomp string, n, gpus int, opts core.Options) (*core.Result, float64, *hetsim.System, error) {
	sys := hetsim.New(hetsim.DefaultConfig(gpus))
	rng := matrix.NewRNG(1)
	switch decomp {
	case "cholesky":
		a := matrix.RandomSPD(n, rng)
		out, res, err := core.Cholesky(sys, a, opts)
		if err != nil {
			return nil, 0, nil, err
		}
		return res, matrix.CholeskyResidual(a, out), sys, nil
	case "qr":
		a := matrix.Random(n, n, rng)
		out, tau, res, err := core.QR(sys, a, opts)
		if err != nil {
			return nil, 0, nil, err
		}
		return res, matrix.QRResidual(a, lapack.BuildQ(out, tau), lapack.ExtractR(out)), sys, nil
	case "lu":
		a := matrix.RandomDiagDominant(n, rng)
		out, piv, res, err := core.LU(sys, a, opts)
		if err != nil {
			return nil, 0, nil, err
		}
		return res, matrix.LUResidual(a, out, piv), sys, nil
	default:
		return nil, 0, nil, fmt.Errorf("unknown decomposition %q", decomp)
	}
}

func parseMode(s string) core.Mode {
	switch s {
	case "none":
		return core.NoChecksum
	case "single":
		return core.SingleSide
	default:
		return core.Full
	}
}

func parseScheme(s string) core.Scheme {
	switch s {
	case "none":
		return core.NoCheck
	case "prior":
		return core.PriorOp
	case "post":
		return core.PostOp
	default:
		return core.NewScheme
	}
}

func parseKernel(s string) checksum.Kernel {
	if s == "gemm" {
		return checksum.GEMMKernel
	}
	return checksum.OptKernel
}
