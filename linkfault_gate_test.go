package ftla

// Link-fault recovery gate (scripts/check.sh runs TestLinkFaultRecovery*
// with -race -count=2): with a fixed-rate corruption plan armed on one of
// three links, the reliable-transfer protocol must carry at least 90% of
// jobs to completion with no job-level retry — the direct API has none, so
// completing at all means every fault was absorbed in-protocol — and every
// completed factor must be bit-identical to a clean run. A wrong-but-
// finished factor is the one outcome this layer exists to rule out.

import (
	"errors"
	"testing"

	"ftla/internal/obs"
)

// gateInput builds the canonical well-conditioned input for each driver.
func gateInput(decomp string, n int, seed uint64) *Matrix {
	switch decomp {
	case "cholesky":
		return RandomSPD(n, seed)
	case "lu":
		return RandomDiagDominant(n, seed)
	default:
		return Random(n, n, seed)
	}
}

// gateRun dispatches one decomposition and returns the factor payload and
// auxiliary output for bit comparison.
func gateRun(decomp string, a *Matrix, cfg Config) (*Matrix, []int, []float64, error) {
	switch decomp {
	case "cholesky":
		r, err := Cholesky(a, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return r.L, nil, nil, nil
	case "lu":
		r, err := LU(a, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return r.Factors, r.Pivots, nil, nil
	default:
		r, err := QR(a, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return r.Factors, nil, r.Tau, nil
	}
}

// TestLinkFaultRecoveryGate is the check.sh recovery gate across all three
// decompositions.
func TestLinkFaultRecoveryGate(t *testing.T) {
	const jobsPerDecomp = 8
	before := obs.Default().Snapshot()
	total, completed := 0, 0
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		base := Config{GPUs: 3, NB: 32}
		a := gateInput(decomp, 128, 17)
		cleanF, cleanPiv, cleanTau, err := gateRun(decomp, a, base)
		if err != nil {
			t.Fatalf("%s: clean baseline failed: %v", decomp, err)
		}

		for j := 0; j < jobsPerDecomp; j++ {
			total++
			cfg := base
			// Fixed-rate corruption on link 1 of 3, with the onset swept
			// across jobs so the firings land in different phases.
			cfg.LinkFault = map[int]LinkFaultPlan{
				1: {Mode: LinkCorrupt, AfterTransfers: 3 * j, Every: 6},
			}
			f, piv, tau, err := gateRun(decomp, a, cfg)
			if err != nil {
				// A job may legitimately lose the link (budget exhausted);
				// what it may never do is finish wrong. The 90% floor below
				// bounds how often this branch is tolerable.
				var le *LinkError
				if !errors.As(err, &le) {
					t.Errorf("%s job %d: untyped failure %v", decomp, j, err)
				}
				continue
			}
			completed++
			if d, r, c := cleanF.MaxAbsDiff(f); d != 0 {
				t.Errorf("%s job %d: silently wrong factor under link corruption: |Δ|=%g at (%d,%d)",
					decomp, j, d, r, c)
			}
			for i := range cleanPiv {
				if piv[i] != cleanPiv[i] {
					t.Errorf("%s job %d: pivot %d differs under link corruption", decomp, j, i)
					break
				}
			}
			for i := range cleanTau {
				if tau[i] != cleanTau[i] {
					t.Errorf("%s job %d: tau %d differs under link corruption", decomp, j, i)
					break
				}
			}
		}
	}
	if completed*10 < total*9 {
		t.Fatalf("recovery rate %d/%d below the 90%% gate", completed, total)
	}
	d := obs.Default().Snapshot().Diff(before)
	if d.CounterValue(obs.MetricTransferRetransmits) == 0 {
		t.Fatal("gate ran with zero retransmissions: the armed corruption never fired")
	}
	t.Logf("gate: %d/%d completed, %d retransmits, %d link faults fired",
		completed, total, d.CounterValue(obs.MetricTransferRetransmits),
		d.CounterValue(obs.Key(obs.MetricLinkFaults, "mode", "corrupt")))
}

// TestLinkFaultRecoveryGateExhaustion pins the other side of the gate: a
// link fault the protocol cannot absorb (a flap longer than the
// retransmission budget) surfaces as a typed *LinkError at the public API,
// never as a wrong result or an untyped failure.
func TestLinkFaultRecoveryGateExhaustion(t *testing.T) {
	cfg := Config{GPUs: 3, NB: 32}
	cfg.LinkFault = map[int]LinkFaultPlan{
		1: {Mode: LinkFlap, Count: 20},
	}
	_, err := LU(RandomDiagDominant(128, 23), cfg)
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LinkError", err)
	}
	if le.Link != 1 || le.Retries == 0 {
		t.Fatalf("LinkError = %+v, want Link=1 with exhausted retries", le)
	}
}

// TestReliableTransferBitIdentityPin extends the bit-identity pins to the
// reliable-transfer path: with no link faults armed, routing every panel
// broadcast, migration, and checkpoint through TransferReliable changes
// nothing — both schedules and every GPU count produce the same bits, and
// zero retransmissions are issued.
func TestReliableTransferBitIdentityPin(t *testing.T) {
	before := obs.Default().Snapshot()
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		a := gateInput(decomp, 96, 29)
		var ref *Matrix
		var refPiv []int
		var refTau []float64
		for gpus := 1; gpus <= 3; gpus++ {
			for _, lookahead := range []int{0, 1} {
				cfg := Config{GPUs: gpus, NB: 16, Lookahead: lookahead}
				f, piv, tau, err := gateRun(decomp, a, cfg)
				if err != nil {
					t.Fatalf("%s gpus=%d lookahead=%d: %v", decomp, gpus, lookahead, err)
				}
				if ref == nil {
					ref, refPiv, refTau = f, piv, tau
					continue
				}
				if d, r, c := ref.MaxAbsDiff(f); d != 0 {
					t.Fatalf("%s gpus=%d lookahead=%d: factor differs from reference: |Δ|=%g at (%d,%d)",
						decomp, gpus, lookahead, d, r, c)
				}
				for i := range refPiv {
					if piv[i] != refPiv[i] {
						t.Fatalf("%s gpus=%d lookahead=%d: pivot %d differs", decomp, gpus, lookahead, i)
					}
				}
				for i := range refTau {
					if tau[i] != refTau[i] {
						t.Fatalf("%s gpus=%d lookahead=%d: tau %d differs", decomp, gpus, lookahead, i)
					}
				}
			}
		}
	}
	d := obs.Default().Snapshot().Diff(before)
	if got := d.CounterValue(obs.MetricTransferRetransmits); got != 0 {
		t.Fatalf("clean runs issued %d retransmissions, want 0", got)
	}
}
